package index

import (
	"errors"
	"testing"
	"testing/quick"

	"hybridstore/internal/simclock"
	"hybridstore/internal/storage"
	"hybridstore/internal/workload"
)

func testSpec() workload.CollectionSpec {
	spec := workload.DefaultCollection(20000)
	spec.VocabSize = 200
	return spec
}

func buildTestIndex(t *testing.T) (*Index, workload.CollectionSpec) {
	t.Helper()
	spec := testSpec()
	dev := storage.NewMemDevice("idx", RequiredBytes(spec)+4096, simclock.New(), storage.DefaultMemParams())
	ix, err := Build(dev, spec)
	if err != nil {
		t.Fatal(err)
	}
	return ix, spec
}

func TestPostingCodecRoundTrip(t *testing.T) {
	f := func(doc uint32, tf uint16) bool {
		var buf [PostingSize]byte
		EncodePosting(buf[:], workload.Posting{Doc: doc, TF: tf})
		got := DecodePosting(buf[:])
		return got.Doc == doc && got.TF == tf
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodePostings(t *testing.T) {
	buf := make([]byte, 3*PostingSize+5) // trailing partial posting ignored
	EncodePosting(buf[0:], workload.Posting{Doc: 1, TF: 10})
	EncodePosting(buf[PostingSize:], workload.Posting{Doc: 2, TF: 9})
	EncodePosting(buf[2*PostingSize:], workload.Posting{Doc: 3, TF: 8})
	ps := DecodePostings(buf)
	if len(ps) != 3 || ps[0].Doc != 1 || ps[2].TF != 8 {
		t.Fatalf("decoded %+v", ps)
	}
}

func TestBuildAndMeta(t *testing.T) {
	ix, spec := buildTestIndex(t)
	if ix.NumTerms() != spec.VocabSize {
		t.Fatalf("NumTerms = %d", ix.NumTerms())
	}
	if ix.NumDocs() != int64(spec.NumDocs) {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	for term := 0; term < spec.VocabSize; term++ {
		m := ix.Meta(workload.TermID(term))
		if m.DF != int64(spec.DocFreq(workload.TermID(term))) {
			t.Fatalf("term %d df = %d", term, m.DF)
		}
	}
}

func TestBuildLayoutContiguous(t *testing.T) {
	ix, spec := buildTestIndex(t)
	for term := 1; term < spec.VocabSize; term++ {
		prev := ix.Meta(workload.TermID(term - 1))
		cur := ix.Meta(workload.TermID(term))
		if cur.Offset != prev.Offset+prev.Bytes() {
			t.Fatalf("term %d not contiguous: %d != %d+%d",
				term, cur.Offset, prev.Offset, prev.Bytes())
		}
	}
}

func TestReadListRangeMatchesSpec(t *testing.T) {
	ix, spec := buildTestIndex(t)
	for _, term := range []workload.TermID{0, 7, 199} {
		want := spec.Postings(term)
		buf := make([]byte, ix.ListBytes(term))
		if err := ix.ReadListRange(term, 0, buf); err != nil {
			t.Fatal(err)
		}
		got := DecodePostings(buf)
		if len(got) != len(want) {
			t.Fatalf("term %d: %d postings, want %d", term, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("term %d posting %d: %+v != %+v", term, i, got[i], want[i])
			}
		}
	}
}

func TestReadListRangePartial(t *testing.T) {
	ix, spec := buildTestIndex(t)
	term := workload.TermID(3)
	want := spec.Postings(term)
	// Read postings 5..10 only.
	buf := make([]byte, 5*PostingSize)
	if err := ix.ReadListRange(term, 5*PostingSize, buf); err != nil {
		t.Fatal(err)
	}
	got := DecodePostings(buf)
	for i := range got {
		if got[i] != want[5+i] {
			t.Fatalf("offset read mismatch at %d", i)
		}
	}
}

func TestReadListRangeBounds(t *testing.T) {
	ix, _ := buildTestIndex(t)
	buf := make([]byte, PostingSize)
	if err := ix.ReadListRange(0, ix.ListBytes(0), buf); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("read past list end: %v", err)
	}
	if err := ix.ReadListRange(0, -1, buf); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestMetaPanicsOutOfRange(t *testing.T) {
	ix, _ := buildTestIndex(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Meta out of range did not panic")
		}
	}()
	ix.Meta(workload.TermID(ix.NumTerms()))
}

func TestOpenRoundTrip(t *testing.T) {
	spec := testSpec()
	clk := simclock.New()
	dev := storage.NewMemDevice("idx", RequiredBytes(spec)+4096, clk, storage.DefaultMemParams())
	built, err := Build(dev, spec)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if opened.NumTerms() != built.NumTerms() || opened.NumDocs() != built.NumDocs() {
		t.Fatalf("opened header mismatch: %d/%d vs %d/%d",
			opened.NumTerms(), opened.NumDocs(), built.NumTerms(), built.NumDocs())
	}
	for term := 0; term < built.NumTerms(); term++ {
		if opened.Meta(workload.TermID(term)) != built.Meta(workload.TermID(term)) {
			t.Fatalf("term %d meta mismatch", term)
		}
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dev := storage.NewMemDevice("junk", 4096, simclock.New(), storage.DefaultMemParams())
	dev.WriteAt([]byte("NOPE"), 0)
	if _, err := Open(dev); err == nil {
		t.Fatal("Open accepted garbage device")
	}
}

func TestBuildRejectsTooSmallDevice(t *testing.T) {
	spec := testSpec()
	dev := storage.NewMemDevice("tiny", 1024, simclock.New(), storage.DefaultMemParams())
	if _, err := Build(dev, spec); err == nil {
		t.Fatal("Build fit an index on a 1 KiB device")
	}
}

func TestBuildRejectsInvalidSpec(t *testing.T) {
	dev := storage.NewMemDevice("idx", 1<<20, simclock.New(), storage.DefaultMemParams())
	if _, err := Build(dev, workload.CollectionSpec{}); err == nil {
		t.Fatal("Build accepted zero spec")
	}
}

func TestRequiredBytesMatchesLayout(t *testing.T) {
	spec := testSpec()
	want := RequiredBytes(spec)
	dev := storage.NewMemDevice("idx", want, simclock.New(), storage.DefaultMemParams())
	ix, err := Build(dev, spec)
	if err != nil {
		t.Fatalf("Build on exactly-sized device failed: %v", err)
	}
	lastDoc := ix.DocMeta(workload.TermID(spec.VocabSize - 1))
	end := lastDoc.Offset + lastDoc.Size
	if end != want {
		t.Fatalf("layout end %d != RequiredBytes %d", end, want)
	}
	if ix.SizeBytes() != want {
		t.Fatalf("SizeBytes %d != RequiredBytes %d", ix.SizeBytes(), want)
	}
}

func TestBuildOnHDDWorks(t *testing.T) {
	// The real configuration: index on a mechanical disk.
	spec := testSpec()
	clk := simclock.New()
	hdd := stubHDD(clk, RequiredBytes(spec)+4096)
	ix, err := Build(hdd, spec)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PostingSize)
	if err := ix.ReadListRange(5, 0, buf); err != nil {
		t.Fatal(err)
	}
	if DecodePosting(buf) != spec.Postings(5)[0] {
		t.Fatal("HDD-backed read mismatch")
	}
}

// stubHDD returns a memory device standing in for a disk; index does not
// care which Device implementation backs it.
func stubHDD(clk *simclock.Clock, size int64) storage.Device {
	return storage.NewMemDevice("hdd", size, clk, storage.DefaultMemParams())
}
