package index

// Block-compressed posting codecs.
//
// Every posting list — impact-ordered and doc-sorted alike — is encoded as
// fixed-count blocks of BlockLen postings. A per-block BlockRef (max doc,
// byte offset, posting count) lives in the in-memory block directory
// (serialized after the term directory, see index.go), so readers can
// address any block without touching the payload. Two codecs share the
// layout:
//
//   - CodecRaw: 6 bytes per posting (doc uint32, tf uint16), the fixed-width
//     baseline. Block boundaries are purely directory constructs.
//   - CodecGVarint: per block, doc IDs are delta-encoded against the
//     previous doc (zigzag of the two's-complement uint32 difference, so
//     unordered impact lists encode losslessly too) and packed group-varint
//     style — one tag byte per group of four docs giving each delta's byte
//     length (1–4), then the truncated little-endian deltas — followed by
//     the group's term frequencies as LEB128 varints. The delta base resets
//     to zero at every block start, keeping blocks independently decodable
//     for skip-driven access.
//
// BlockCursor is the zero-copy read side: it decodes doc-at-a-time straight
// from a device-returned buffer, no intermediate []workload.Posting.

import (
	"fmt"

	"hybridstore/internal/workload"
)

// BlockLen is the posting count per block (the last block of a list may
// hold fewer).
const BlockLen = 128

// CodecID selects a posting-block encoding.
type CodecID uint8

// Available codecs.
const (
	CodecRaw CodecID = iota
	CodecGVarint
)

// String names the codec (the -codec flag values).
func (c CodecID) String() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecGVarint:
		return "gvarint"
	default:
		return fmt.Sprintf("CodecID(%d)", uint8(c))
	}
}

// Valid reports whether c is a known codec.
func (c CodecID) Valid() bool { return c == CodecRaw || c == CodecGVarint }

// ParseCodec maps a -codec flag value to a CodecID.
func ParseCodec(name string) (CodecID, error) {
	switch name {
	case "raw":
		return CodecRaw, nil
	case "gvarint":
		return CodecGVarint, nil
	default:
		return 0, fmt.Errorf("index: unknown codec %q (want raw or gvarint)", name)
	}
}

// BlockRef locates one block inside a list payload: the skip entry.
type BlockRef struct {
	// MaxDoc is the highest document ID in the block. On doc-sorted lists
	// it is the block's last doc and drives skip-seeking; on impact lists
	// it is informational.
	MaxDoc uint32
	// Off is the block's byte offset relative to the list payload start.
	Off uint32
	// Count is the number of postings in the block (BlockLen except for a
	// list's final block).
	Count uint32
}

// zigzag32 maps a signed delta to an unsigned value with small magnitudes
// encoding short.
func zigzag32(v int32) uint32 { return uint32((v << 1) ^ (v >> 31)) }

// unzigzag32 inverts zigzag32.
func unzigzag32(z uint32) int32 { return int32(z>>1) ^ -int32(z&1) }

// appendBlockRaw encodes ps as fixed-width postings.
func appendBlockRaw(dst []byte, ps []workload.Posting) []byte {
	for _, p := range ps {
		var b [PostingSize]byte
		EncodePosting(b[:], p)
		dst = append(dst, b[:]...)
	}
	return dst
}

// appendBlockGVarint encodes ps as delta-packed groups; the delta base is
// zero so the block decodes independently.
func appendBlockGVarint(dst []byte, ps []workload.Posting) []byte {
	var prev uint32
	for g := 0; g < len(ps); g += 4 {
		n := len(ps) - g
		if n > 4 {
			n = 4
		}
		tagPos := len(dst)
		dst = append(dst, 0)
		var tag byte
		for k := 0; k < n; k++ {
			z := zigzag32(int32(ps[g+k].Doc - prev))
			prev = ps[g+k].Doc
			bl := 1
			for z >= 1<<(8*bl) && bl < 4 {
				bl++
			}
			tag |= byte(bl-1) << (2 * k)
			for j := 0; j < bl; j++ {
				dst = append(dst, byte(z>>(8*j)))
			}
		}
		dst[tagPos] = tag
		for k := 0; k < n; k++ {
			v := uint32(ps[g+k].TF)
			for v >= 0x80 {
				dst = append(dst, byte(v)|0x80)
				v >>= 7
			}
			dst = append(dst, byte(v))
		}
	}
	return dst
}

// EncodeList appends ps to dst as codec blocks of BlockLen postings,
// appending one BlockRef per block to refs. Block offsets are relative to
// the first byte this call appends (the list payload start).
func EncodeList(dst []byte, refs []BlockRef, c CodecID, ps []workload.Posting) ([]byte, []BlockRef) {
	base := len(dst)
	for i := 0; i < len(ps); i += BlockLen {
		j := i + BlockLen
		if j > len(ps) {
			j = len(ps)
		}
		block := ps[i:j]
		maxDoc := block[0].Doc
		for _, p := range block[1:] {
			if p.Doc > maxDoc {
				maxDoc = p.Doc
			}
		}
		refs = append(refs, BlockRef{
			MaxDoc: maxDoc,
			Off:    uint32(len(dst) - base),
			Count:  uint32(len(block)),
		})
		switch c {
		case CodecGVarint:
			dst = appendBlockGVarint(dst, block)
		default:
			dst = appendBlockRaw(dst, block)
		}
	}
	return dst, refs
}

// BlockCursor decodes one block's postings doc-at-a-time from an encoded
// buffer. It holds no allocations of its own beyond fixed group scratch, so
// hot paths can embed one and Reset it per block. A cursor must not be used
// after Next returns false; check Err for truncation or corruption.
type BlockCursor struct {
	codec CodecID
	buf   []byte
	count int
	i     int // postings emitted
	pos   int // byte position (gvarint)
	prev  uint32
	gdocs [4]uint32
	gtfs  [4]uint16
	gn    int // postings decoded into the group scratch
	gi    int // next group-scratch entry to emit
	err   error
}

// Reset points the cursor at a block payload holding count postings.
func (c *BlockCursor) Reset(codec CodecID, buf []byte, count int) {
	*c = BlockCursor{codec: codec, buf: buf, count: count}
}

// Err returns the first decode error (nil on clean exhaustion).
func (c *BlockCursor) Err() error { return c.err }

// Next returns the next posting, or ok=false at block end or on error.
func (c *BlockCursor) Next() (workload.Posting, bool) {
	if c.err != nil || c.i >= c.count {
		return workload.Posting{}, false
	}
	switch c.codec {
	case CodecRaw:
		off := c.i * PostingSize
		if off+PostingSize > len(c.buf) {
			c.err = fmt.Errorf("index: raw block truncated at posting %d/%d", c.i, c.count)
			return workload.Posting{}, false
		}
		c.i++
		return DecodePosting(c.buf[off:]), true
	case CodecGVarint:
		if c.gi >= c.gn {
			if !c.fillGroup() {
				return workload.Posting{}, false
			}
		}
		p := workload.Posting{Doc: c.gdocs[c.gi], TF: c.gtfs[c.gi]}
		c.gi++
		c.i++
		return p, true
	default:
		c.err = fmt.Errorf("index: unknown codec %d", c.codec)
		return workload.Posting{}, false
	}
}

// fillGroup decodes the next group (tag, doc deltas, tf varints) into the
// group scratch, reporting false on truncation or overflow.
func (c *BlockCursor) fillGroup() bool {
	n := c.count - c.i
	if n > 4 {
		n = 4
	}
	if c.pos >= len(c.buf) {
		c.err = fmt.Errorf("index: gvarint block truncated at group tag (posting %d/%d)", c.i, c.count)
		return false
	}
	tag := c.buf[c.pos]
	c.pos++
	for k := 0; k < n; k++ {
		bl := int((tag>>(2*k))&3) + 1
		if c.pos+bl > len(c.buf) {
			c.err = fmt.Errorf("index: gvarint block truncated in doc deltas (posting %d/%d)", c.i, c.count)
			return false
		}
		var z uint32
		for j := 0; j < bl; j++ {
			z |= uint32(c.buf[c.pos+j]) << (8 * j)
		}
		c.pos += bl
		c.prev += uint32(unzigzag32(z))
		c.gdocs[k] = c.prev
	}
	for k := 0; k < n; k++ {
		var v uint32
		shift := 0
		for {
			if c.pos >= len(c.buf) {
				c.err = fmt.Errorf("index: gvarint block truncated in tf varints (posting %d/%d)", c.i, c.count)
				return false
			}
			b := c.buf[c.pos]
			c.pos++
			v |= uint32(b&0x7f) << shift
			if b&0x80 == 0 {
				break
			}
			shift += 7
			if shift > 14 {
				c.err = fmt.Errorf("index: gvarint tf varint overflows uint16 (posting %d/%d)", c.i, c.count)
				return false
			}
		}
		if v > 0xffff {
			c.err = fmt.Errorf("index: gvarint tf %d overflows uint16 (posting %d/%d)", v, c.i, c.count)
			return false
		}
		c.gtfs[k] = uint16(v)
	}
	c.gn, c.gi = n, 0
	return true
}
