package hybrid

import (
	"strings"
	"testing"
	"time"

	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/index"
	"hybridstore/internal/workload"
)

// smallConfig returns a fast, laptop-scale system for integration tests,
// shaped so the caches are under genuine capacity pressure (the regime the
// paper's policies are designed for): large hot lists relative to L1,
// SSD regions that hold the hot set.
func smallConfig(policy core.Policy, mode CacheMode) Config {
	collection := workload.DefaultCollection(1_000_000)
	collection.VocabSize = 3000
	collection.MaxDFShare = 0.2
	log := workload.DefaultQueryLog(collection.VocabSize)
	log.DistinctQueries = 10000

	// Capacities track the 6-byte posting encoding: the regime (capacity
	// pressure on L1, SSD holding the hot set) is what matters, so cache
	// budgets scale with the on-device list bytes.
	cacheCfg := core.DefaultConfig(9 << 17) // 1.125 MiB memory
	cacheCfg.Policy = policy
	cacheCfg.TEV = 2
	cacheCfg.SSDResultBytes = 2 << 20
	cacheCfg.SSDListBytes = 9 << 20

	engCfg := engine.DefaultConfig()
	engCfg.TerminationFrac = 0.35

	return Config{
		Collection: collection,
		QueryLog:   log,
		Cache:      cacheCfg,
		Mode:       mode,
		IndexOn:    IndexOnHDD,
		Engine:     engCfg,
		UseModelPU: true,
	}
}

func TestNewBuildsAllModes(t *testing.T) {
	for _, mode := range []CacheMode{CacheNone, CacheOneLevel, CacheTwoLevel} {
		sys, err := New(smallConfig(core.PolicyCBLRU, mode))
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if mode == CacheTwoLevel && sys.CacheSSD == nil {
			t.Fatal("two-level system lacks cache SSD")
		}
		if mode != CacheTwoLevel && sys.CacheSSD != nil {
			t.Fatal("unexpected cache SSD")
		}
		if mode == CacheNone && sys.Manager != nil {
			t.Fatal("uncached system has a manager")
		}
		if _, _, err := sys.SearchNext(); err != nil {
			t.Fatalf("mode %d: search: %v", mode, err)
		}
	}
}

func TestIndexOnSSD(t *testing.T) {
	cfg := smallConfig(core.PolicyCBLRU, CacheOneLevel)
	cfg.IndexOn = IndexOnSSD
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.IndexSSD == nil || sys.HDD != nil {
		t.Fatal("index device wrong")
	}
	if _, _, err := sys.SearchNext(); err != nil {
		t.Fatal(err)
	}
	if sys.IndexSSD.Stats().Reads == 0 {
		t.Fatal("no reads hit the index SSD")
	}
}

func TestSearchDeterministic(t *testing.T) {
	cfg := smallConfig(core.PolicyCBLRU, CacheTwoLevel)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		ra, ia, ea := a.SearchNext()
		rb, ib, eb := b.SearchNext()
		if (ea == nil) != (eb == nil) {
			t.Fatalf("query %d: error divergence %v vs %v", i, ea, eb)
		}
		if ia.Elapsed != ib.Elapsed || ia.Cached != ib.Cached {
			t.Fatalf("query %d: info divergence %+v vs %+v", i, ia, ib)
		}
		if len(ra.Docs) != len(rb.Docs) {
			t.Fatalf("query %d: result divergence", i)
		}
		for j := range ra.Docs {
			if ra.Docs[j] != rb.Docs[j] {
				t.Fatalf("query %d doc %d: %v vs %v", i, j, ra.Docs[j], rb.Docs[j])
			}
		}
	}
}

func TestCachedResultMatchesComputed(t *testing.T) {
	sys, err := New(smallConfig(core.PolicyCBLRU, CacheTwoLevel))
	if err != nil {
		t.Fatal(err)
	}
	q := sys.Log.QueryByID(3)
	first, info1, err := sys.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if info1.Cached {
		t.Fatal("first search reported cached")
	}
	second, info2, err := sys.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Cached {
		t.Fatal("repeat search not cached")
	}
	if len(first.Docs) != len(second.Docs) {
		t.Fatalf("cached result truncated: %d vs %d", len(second.Docs), len(first.Docs))
	}
	for i := range first.Docs {
		if first.Docs[i].Doc != second.Docs[i].Doc {
			t.Fatalf("cached result differs at rank %d", i)
		}
	}
}

func TestHitRatioGrowsWithRepetition(t *testing.T) {
	sys, err := New(smallConfig(core.PolicyCBLRU, CacheTwoLevel))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sys.Run(1500)
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Manager.Stats()
	if st.ResultHitRatio() < 0.15 {
		t.Fatalf("RC hit ratio %.3f too low for a Zipf query stream", st.ResultHitRatio())
	}
	if st.ListHitRatio() <= 0 {
		t.Fatal("IC never hit")
	}
	if rs.Queries != 1500 || rs.MeanResponseTime() <= 0 || rs.Throughput() <= 0 {
		t.Fatalf("run stats: %+v", rs)
	}
}

func TestSituationsPopulated(t *testing.T) {
	sys, err := New(smallConfig(core.PolicyCBLRU, CacheTwoLevel))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(800); err != nil {
		t.Fatal(err)
	}
	tally := sys.Manager.Stats().Situations
	if tally.Total() != 800 {
		t.Fatalf("tally total = %d", tally.Total())
	}
	if tally.Counts[core.S1ResultMem] == 0 {
		t.Fatal("no S1 (memory result hits) in a repetitive stream")
	}
	if tally.Counts[core.S9ListsHDD] == 0 {
		t.Fatal("no S9 (pure HDD) queries — cold misses must exist")
	}
}

func TestCBLRUBeatsLRUHitRatio(t *testing.T) {
	// The paper's headline (Fig 14b): CBLRU achieves a higher hit ratio
	// than LRU at equal capacity, because it caches used prefixes and
	// evicts by efficiency value.
	run := func(policy core.Policy) core.Stats {
		sys, err := New(smallConfig(policy, CacheTwoLevel))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(2000); err != nil {
			t.Fatal(err)
		}
		return sys.Manager.Stats()
	}
	lru := run(core.PolicyLRU)
	cblru := run(core.PolicyCBLRU)
	if cblru.CombinedHitRatio() <= lru.CombinedHitRatio() {
		t.Fatalf("CBLRU RIC %.4f not above LRU RIC %.4f",
			cblru.CombinedHitRatio(), lru.CombinedHitRatio())
	}
}

func TestCBLRUFasterThanLRU(t *testing.T) {
	// Fig 17: lower mean response time under CBLRU. Measured warm, as the
	// paper's steady-state curves are: the cost-based policies pay their
	// flush traffic up front and win on the recurring workload.
	run := func(policy core.Policy) time.Duration {
		sys, err := New(smallConfig(policy, CacheTwoLevel))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(2000); err != nil {
			t.Fatal(err)
		}
		rs, err := sys.Run(2000)
		if err != nil {
			t.Fatal(err)
		}
		return rs.MeanResponseTime()
	}
	lru := run(core.PolicyLRU)
	cblru := run(core.PolicyCBLRU)
	if cblru >= lru {
		t.Fatalf("CBLRU response %v not below LRU %v", cblru, lru)
	}
}

func TestCBLRUFewerErasesThanLRU(t *testing.T) {
	// Fig 19a: block-aligned log writes erase less than small random
	// writes at equal workload.
	run := func(policy core.Policy) int64 {
		sys, err := New(smallConfig(policy, CacheTwoLevel))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(2500); err != nil {
			t.Fatal(err)
		}
		return sys.CacheSSD.Wear().TotalErases
	}
	lru := run(core.PolicyLRU)
	cblru := run(core.PolicyCBLRU)
	if cblru > lru {
		t.Fatalf("CBLRU erases %d above LRU erases %d", cblru, lru)
	}
}

func TestWarmupStaticPinsAndHelps(t *testing.T) {
	cfg := smallConfig(core.PolicyCBSLRU, CacheTwoLevel)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := sys.WarmupStatic(3000)
	if err != nil {
		t.Fatal(err)
	}
	if ws.PinnedResults == 0 || ws.PinnedLists == 0 {
		t.Fatalf("warmup pinned nothing: %+v", ws)
	}
	sys.Manager.ResetStats()
	if _, err := sys.Run(1000); err != nil {
		t.Fatal(err)
	}
	st := sys.Manager.Stats()
	if st.ResultHitsSSD == 0 && st.ListBytesFromSSD == 0 {
		t.Fatal("static partition never served anything")
	}
}

func TestWarmupNoopForOtherPolicies(t *testing.T) {
	sys, err := New(smallConfig(core.PolicyCBLRU, CacheTwoLevel))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := sys.WarmupStatic(1000)
	if err != nil {
		t.Fatal(err)
	}
	if ws.PinnedResults != 0 || ws.PinnedLists != 0 {
		t.Fatalf("warmup pinned under CBLRU: %+v", ws)
	}
}

func TestReportRenders(t *testing.T) {
	sys, err := New(smallConfig(core.PolicyCBLRU, CacheTwoLevel))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(100); err != nil {
		t.Fatal(err)
	}
	rep := sys.Report()
	for _, want := range []string{"policy=CBLRU", "hit ratios", "hdd:", "cache-ssd"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestCacheHierarchyPreservesRankings(t *testing.T) {
	// The cache hierarchy must be semantically transparent: for every
	// query, executing through the manager yields exactly the ranking the
	// uncached engine computes on the raw index. Run enough queries that
	// every cache transition (fill, evict, SSD reload, partial hit) is
	// exercised.
	for _, policy := range []core.Policy{core.PolicyLRU, core.PolicyCBLRU} {
		t.Run(policy.String(), func(t *testing.T) {
			cfg := smallConfig(policy, CacheTwoLevel)
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			engCfg := engine.DefaultConfig()
			engCfg.TerminationFrac = cfg.Engine.TerminationFrac
			raw := engine.New(sys.Index, engCfg)
			for i := 0; i < 300; i++ {
				q := sys.Log.Next()
				got, _, err := sys.Engine.Execute(q)
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := raw.Execute(q)
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Docs) != len(want.Docs) {
					t.Fatalf("query %d: %d vs %d docs", q.ID, len(got.Docs), len(want.Docs))
				}
				for j := range got.Docs {
					if got.Docs[j] != want.Docs[j] {
						t.Fatalf("query %d rank %d: %+v vs %+v",
							q.ID, j, got.Docs[j], want.Docs[j])
					}
				}
			}
		})
	}
}

// TestResultsIdenticalAcrossCodecs is the tentpole divergence test: every
// cache mode must return the same ranked results whether the on-device
// index is raw or group-varint compressed. The gvarint runs exercise the
// compressed read path through every tier (memory hit, SSD reload, HDD
// miss) while the raw runs are the reference.
func TestResultsIdenticalAcrossCodecs(t *testing.T) {
	for _, mode := range []CacheMode{CacheNone, CacheOneLevel, CacheTwoLevel} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(codec index.CodecID) ([]*engine.Result, int64) {
				cfg := smallConfig(core.PolicyCBLRU, mode)
				cfg.Codec = codec
				sys, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				out := make([]*engine.Result, 0, 400)
				for i := 0; i < 400; i++ {
					res, _, err := sys.SearchNext()
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, res)
				}
				return out, sys.Index.SizeBytes()
			}
			rawRes, rawBytes := run(index.CodecRaw)
			gvRes, gvBytes := run(index.CodecGVarint)
			if gvBytes >= rawBytes {
				t.Fatalf("gvarint index %d bytes, raw %d: no on-device savings", gvBytes, rawBytes)
			}
			for i := range rawRes {
				a, b := rawRes[i], gvRes[i]
				if a.QueryID != b.QueryID || len(a.Docs) != len(b.Docs) {
					t.Fatalf("query %d: shape diverges across codecs", i)
				}
				for j := range a.Docs {
					if a.Docs[j] != b.Docs[j] {
						t.Fatalf("query %d rank %d: %+v (raw) vs %+v (gvarint)",
							i, j, a.Docs[j], b.Docs[j])
					}
				}
			}
		})
	}
}

func TestWarmRestartKeepsSSDCache(t *testing.T) {
	sys, err := New(smallConfig(core.PolicyCBLRU, CacheTwoLevel))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(1200); err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveCacheMappings(); err != nil {
		t.Fatal(err)
	}
	preStats := sys.Manager.Stats()
	if preStats.ResultHitsSSD+preStats.ResultHitsMem == 0 {
		t.Skip("nothing cached before restart")
	}
	if err := sys.RestartWarm(); err != nil {
		t.Fatal(err)
	}
	// The restarted system must serve SSD hits immediately.
	if _, err := sys.Run(600); err != nil {
		t.Fatal(err)
	}
	post := sys.Manager.Stats()
	if post.ResultHitsSSD == 0 && post.ListBytesFromSSD == 0 {
		t.Fatal("warm restart served nothing from the SSD")
	}
}

func TestWarmRestartRequiresTwoLevel(t *testing.T) {
	sys, err := New(smallConfig(core.PolicyCBLRU, CacheOneLevel))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveCacheMappings(); err == nil {
		t.Fatal("save succeeded without an SSD")
	}
	if err := sys.RestartWarm(); err == nil {
		t.Fatal("restart succeeded without an SSD")
	}
}

func TestCacheFTLVariantsRun(t *testing.T) {
	for _, ftl := range []FTLKind{FTLPageMap, FTLBlockMap, FTLHybridLog} {
		cfg := smallConfig(core.PolicyCBLRU, CacheTwoLevel)
		cfg.CacheFTL = ftl
		sys, err := New(cfg)
		if err != nil {
			t.Fatalf("%v: %v", ftl, err)
		}
		if _, err := sys.Run(150); err != nil {
			t.Fatalf("%v: %v", ftl, err)
		}
		if sys.CacheSSD.Stats().Writes == 0 {
			t.Fatalf("%v: cache SSD never written", ftl)
		}
	}
	// Unknown FTL is rejected.
	bad := smallConfig(core.PolicyCBLRU, CacheTwoLevel)
	bad.CacheFTL = FTLKind(42)
	if _, err := New(bad); err == nil {
		t.Fatal("unknown FTL accepted")
	}
}

func TestFTLKindString(t *testing.T) {
	for ftl, want := range map[FTLKind]string{
		FTLPageMap: "page-map", FTLBlockMap: "block-map", FTLHybridLog: "hybrid-log",
	} {
		if got := ftl.String(); got != want {
			t.Fatalf("%d.String() = %q", ftl, got)
		}
	}
	if FTLKind(9).String() == "" {
		t.Fatal("unknown kind renders empty")
	}
}

func TestTTLPlumbedThroughFacade(t *testing.T) {
	cfg := smallConfig(core.PolicyCBLRU, CacheTwoLevel)
	cfg.Cache.ResultTTL = time.Millisecond // everything expires immediately
	cfg.Cache.ListTTL = time.Millisecond
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(400); err != nil {
		t.Fatal(err)
	}
	st := sys.Manager.Stats()
	if st.ResultsExpired == 0 && st.ListsExpired == 0 {
		t.Fatal("aggressive TTLs expired nothing")
	}
	if st.ResultHitRatio() > 0.05 {
		t.Fatalf("RC hit ratio %.3f despite 1ms TTL", st.ResultHitRatio())
	}
}

func TestInvalidConfigsRejected(t *testing.T) {
	bad := smallConfig(core.PolicyCBLRU, CacheTwoLevel)
	bad.Collection.NumDocs = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero-doc collection accepted")
	}
	bad2 := smallConfig(core.PolicyCBLRU, CacheTwoLevel)
	bad2.QueryLog.VocabSize = 0
	if _, err := New(bad2); err == nil {
		t.Fatal("bad query log accepted")
	}
	bad3 := smallConfig(core.PolicyCBLRU, CacheTwoLevel)
	bad3.IndexOn = IndexPlacement(9)
	if _, err := New(bad3); err == nil {
		t.Fatal("bad placement accepted")
	}
	bad4 := smallConfig(core.Policy(42), CacheTwoLevel)
	if _, err := New(bad4); err == nil {
		t.Fatal("unknown policy accepted")
	}
	// Two-level-only policies must be rejected without an SSD level — the
	// validation the searchsim CLI used to carry.
	for _, p := range []core.Policy{core.PolicyCBSLRU, core.PolicyBidi} {
		bad5 := smallConfig(p, CacheOneLevel)
		if _, err := New(bad5); err == nil {
			t.Fatalf("%v accepted without a two-level cache", p)
		}
	}
	bad6 := smallConfig(core.PolicyCBLRU, CacheOneLevel)
	bad6.HeteroCacheTier = true
	if _, err := New(bad6); err == nil {
		t.Fatal("hetero tier accepted without a two-level cache")
	}
	bad7 := smallConfig(core.PolicyCBLRU, CacheTwoLevel)
	bad7.HeteroCacheTier = true
	bad7.CacheFTL = FTLBlockMap
	if _, err := New(bad7); err == nil {
		t.Fatal("hetero tier accepted on a non-page-mapped FTL")
	}
	bad8 := smallConfig(core.PolicyCBLRU, CacheTwoLevel)
	bad8.HeteroCacheTier = true
	bad8.HeteroSlowFactor = -1
	if _, err := New(bad8); err == nil {
		t.Fatal("negative hetero slow factor accepted")
	}
}

func TestHeteroTierSplitsWear(t *testing.T) {
	cfg := smallConfig(core.PolicyCBLRU, CacheTwoLevel)
	cfg.HeteroCacheTier = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiered := sys.CacheTiered()
	if tiered == nil {
		t.Fatal("hetero system has no tiered cache device")
	}
	if _, err := sys.Run(1500); err != nil {
		t.Fatal(err)
	}
	fast, slow := tiered.Fast().Wear(), tiered.Slow().Wear()
	if fast.HostPagesWritten == 0 {
		t.Fatal("no result traffic reached the fast tier")
	}
	if slow.HostPagesWritten == 0 {
		t.Fatal("no list traffic reached the slow tier")
	}
	sum := tiered.Wear()
	if sum.HostPagesWritten != fast.HostPagesWritten+slow.HostPagesWritten {
		t.Fatalf("combined wear %d != fast %d + slow %d",
			sum.HostPagesWritten, fast.HostPagesWritten, slow.HostPagesWritten)
	}

	// The tier composition must not change any caching decision: the same
	// config on a homogeneous device yields identical manager stats.
	homoCfg := smallConfig(core.PolicyCBLRU, CacheTwoLevel)
	homo, err := New(homoCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := homo.Run(1500); err != nil {
		t.Fatal(err)
	}
	if h, s := homo.Manager.Stats().CombinedHitRatio(), sys.Manager.Stats().CombinedHitRatio(); h != s {
		t.Fatalf("hit ratio changed with tiering: homo %v hetero %v", h, s)
	}
}
