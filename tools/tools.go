//go:build tools

// Package tools pins the repository's lint tooling in one place.
//
// The build tag keeps this file out of every normal build (the module must
// compile offline from a bare toolchain, so the dependency cannot live in
// go.mod's require graph without a reachable module proxy). The canonical
// version is the `version:` comment below — scripts/lint.sh and the CI
// lint job both extract it from here, so bumping staticcheck is a
// one-line change that local runs and CI pick up identically:
//
//	go install honnef.co/go/tools/cmd/staticcheck@<version>
package tools

import (
	_ "honnef.co/go/tools/cmd/staticcheck" // version: 2023.1.7
)
