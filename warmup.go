package hybrid

import (
	"sort"

	"hybridstore/internal/workload"
)

// WarmupStats reports what static warm-up pinned.
type WarmupStats struct {
	SampleQueries int
	PinnedResults int
	PinnedLists   int
}

// WarmupStatic performs the CBSLRU query-log analysis of §VI-C2: it samples
// the query log offline (a fresh copy, leaving the live stream untouched),
// ranks queries by repetition frequency and terms by efficiency value, and
// pins the most valuable result entries and list prefixes into the SSD's
// static partitions.
//
// Pinned results are computed with the uncached engine so the dynamic
// caches stay cold; the simulated time spent is setup cost, charged on the
// clock like any other work.
//
// It is a no-op (returning zero counts) for policies without a static
// partition (everything but CBSLRU today).
func (s *System) WarmupStatic(sampleQueries int) (WarmupStats, error) {
	ws := WarmupStats{SampleQueries: sampleQueries}
	if s.Manager == nil || !s.Manager.UsesStaticPartition() {
		return ws, nil
	}

	sample := workload.NewQueryLog(s.cfg.QueryLog)
	queryCount := make(map[uint64]int64)
	termCount := make(map[workload.TermID]int64)
	for i := 0; i < sampleQueries; i++ {
		q := sample.Next()
		queryCount[q.ID]++
		for _, t := range q.Terms {
			termCount[t]++
		}
	}

	// Pin the hottest queries' results until the static result budget
	// rejects further entries.
	qids := make([]uint64, 0, len(queryCount))
	for qid := range queryCount {
		qids = append(qids, qid)
	}
	sort.Slice(qids, func(i, j int) bool {
		if queryCount[qids[i]] != queryCount[qids[j]] {
			return queryCount[qids[i]] > queryCount[qids[j]]
		}
		return qids[i] < qids[j]
	})
	for _, qid := range qids {
		if queryCount[qid] < 2 {
			break // singletons are not worth pinning
		}
		res, stats, err := s.uncachedE.Execute(sample.QueryByID(qid))
		if err != nil {
			return ws, err
		}
		// These executions double as utilization measurements, refining
		// the PU estimates the list pins below are sized with.
		for _, ts := range stats.Terms {
			s.Manager.RecordUtilization(ts.Term, ts.Utilization)
		}
		if !s.Manager.PinResult(qid, res.Encode(s.docBytes)) {
			break
		}
		ws.PinnedResults++
	}

	// Pin the highest-efficiency lists. EV estimates use the sampled
	// frequency and the Formula 1 size the pin would occupy.
	terms := make([]workload.TermID, 0, len(termCount))
	for t := range termCount {
		terms = append(terms, t)
	}
	blockBytes := s.Manager.Config().BlockBytes
	var puModel *workload.UtilizationModel
	if s.cfg.UseModelPU {
		puModel = workload.NewUtilizationModel(s.cfg.Collection)
	}
	evOf := func(t workload.TermID) float64 {
		pu := 1.0
		if puModel != nil {
			pu = puModel.PU(t)
		}
		si := int64(float64(s.Index.ListBytes(t)) * pu)
		sc := (si + blockBytes - 1) / blockBytes
		if sc < 1 {
			sc = 1
		}
		return float64(termCount[t]) / float64(sc)
	}
	sort.Slice(terms, func(i, j int) bool {
		ei, ej := evOf(terms[i]), evOf(terms[j])
		if ei != ej {
			return ei > ej
		}
		return terms[i] < terms[j]
	})
	misses := 0
	for _, t := range terms {
		if s.Manager.PinList(t) {
			ws.PinnedLists++
			misses = 0
		} else {
			misses++
			if misses >= 8 {
				break // budget effectively exhausted
			}
		}
	}
	return ws, nil
}
