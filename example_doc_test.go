package hybrid_test

import (
	"fmt"
	"log"

	hybrid "hybridstore"
	"hybridstore/internal/core"
	"hybridstore/internal/workload"
)

// Example demonstrates the minimal end-to-end flow: build a small system,
// search the same query twice, and observe the result cache taking over.
// Everything runs on a virtual clock, so the output is deterministic.
func Example() {
	cfg := hybrid.DefaultConfig()
	cfg.Collection.NumDocs = 50_000
	cfg.Collection.VocabSize = 500
	cfg.QueryLog.VocabSize = 500
	cfg.Cache = core.DefaultConfig(1 << 20)
	cfg.Cache.SSDResultBytes = 1 << 20
	cfg.Cache.SSDListBytes = 4 << 20

	sys, err := hybrid.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	q := workload.Query{ID: 42, Terms: []workload.TermID{0, 7}}

	res1, info1, err := sys.Search(q)
	if err != nil {
		log.Fatal(err)
	}
	res2, info2, err := sys.Search(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first:  %d results, cached=%v\n", len(res1.Docs), info1.Cached)
	fmt.Printf("second: %d results, cached=%v\n", len(res2.Docs), info2.Cached)
	fmt.Printf("identical top hit: %v\n", res1.Docs[0].Doc == res2.Docs[0].Doc)
	// Output:
	// first:  50 results, cached=false
	// second: 50 results, cached=true
	// identical top hit: true
}
