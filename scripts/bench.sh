#!/usr/bin/env bash
# bench.sh — per-PR benchmark harness.
#
# Times the full experiment suite serially (-jobs 1) and on all CPUs
# (-jobs $(nproc)), verifies the two stdout streams are byte-identical,
# runs the tier-1 engine/index micro-benchmarks with -benchmem, runs the
# codec matrix (table1 under raw and gvarint on every workload scale in the
# matrix) verifying the compressed index is strictly smaller on device and
# query results are byte-identical across codecs (timing/occupancy rows are
# byte-denominated and may differ), extracts the serving shard x load
# throughput/tail-latency matrix and the policy-zoo sweep (every registered
# cache policy x budget x workload) from the suite output, and writes the
# whole record to BENCH_pr${PR}.json, extending the perf trajectory
# (BENCH_pr2.json was the first point). Fails hard if
# BenchmarkEngineExecute exceeds 8 allocs/op (the PR 2 zero-copy budget).
#
# Baselines: the microbench "baseline" objects and the suite pre-change
# number are filled from the newest committed BENCH_pr*.json below the
# current PR (the previous trajectory point); BASELINE_* environment
# variables override. The parallel speedup is only reported on hosts with
# more than one CPU -- on a single CPU the ratio is pure noise.
#
# Environment:
#   PR       PR number stamped into the record (default: 9)
#   SCALE    suite scale to time (default: small; full takes much longer)
#   JOBS     parallel job count (default: nproc)
#   OUT      output JSON path (default: BENCH_pr${PR}.json in the repo root)
#   BASELINE_ENGINE_NS / _ALLOCS, BASELINE_E2E_NS / _ALLOCS,
#   BASELINE_BUILD_NS / _ALLOCS, BASELINE_SUITE_S
#            optional pre-change numbers to embed for before/after deltas
set -euo pipefail

cd "$(dirname "$0")/.."

PR="${PR:-9}"
SCALE="${SCALE:-small}"
JOBS="${JOBS:-$(nproc)}"
OUT="${OUT:-BENCH_pr${PR}.json}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Newest committed trajectory point below the current PR supplies the
# baseline numbers, unless BASELINE_* already set them.
PREV_BENCH=""
for f in $(ls BENCH_pr*.json 2>/dev/null | sort -t r -k 2 -n); do
    n="${f#BENCH_pr}"; n="${n%.json}"
    [ "$n" -lt "$PR" ] 2>/dev/null && PREV_BENCH="$f"
done
if [ -n "$PREV_BENCH" ]; then
    echo "== baseline from $PREV_BENCH" >&2
    prev_field() { jq -r "$1 // empty" "$PREV_BENCH" 2>/dev/null; }
    : "${BASELINE_ENGINE_NS:=$(prev_field .microbench.engine_execute.ns_op)}"
    : "${BASELINE_ENGINE_ALLOCS:=$(prev_field .microbench.engine_execute.allocs_op)}"
    : "${BASELINE_E2E_NS:=$(prev_field .microbench.end_to_end_search.ns_op)}"
    : "${BASELINE_E2E_ALLOCS:=$(prev_field .microbench.end_to_end_search.allocs_op)}"
    : "${BASELINE_BUILD_NS:=$(prev_field .microbench.index_build.ns_op)}"
    : "${BASELINE_BUILD_ALLOCS:=$(prev_field .microbench.index_build.allocs_op)}"
    : "${BASELINE_SUITE_S:=$(prev_field .suite.serial_jobs1_seconds)}"
else
    echo "== no committed BENCH_pr*.json below PR $PR; baselines only from env" >&2
fi

echo "== building hybridbench" >&2
go build -o "$WORK/hybridbench" ./cmd/hybridbench

run_suite() { # run_suite <jobs> <outfile> -> wall seconds
    local t0 t1
    t0=$(date +%s.%N)
    "$WORK/hybridbench" -exp all -scale "$SCALE" -jobs "$1" >"$2" 2>"$WORK/err_$1.txt"
    t1=$(date +%s.%N)
    awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.2f", b-a}'
}

echo "== timing suite: -scale $SCALE -jobs 1" >&2
SERIAL_S=$(run_suite 1 "$WORK/out_serial.txt")
echo "   ${SERIAL_S}s" >&2

echo "== timing suite: -scale $SCALE -jobs $JOBS" >&2
PARALLEL_S=$(run_suite "$JOBS" "$WORK/out_parallel.txt")
echo "   ${PARALLEL_S}s" >&2

if ! cmp -s "$WORK/out_serial.txt" "$WORK/out_parallel.txt"; then
    echo "FATAL: -jobs 1 and -jobs $JOBS stdout differ" >&2
    diff "$WORK/out_serial.txt" "$WORK/out_parallel.txt" | head -40 >&2
    exit 1
fi
echo "== outputs byte-identical" >&2

echo "== running tier-1 micro-benchmarks (-benchmem)" >&2
go test -run '^$' -bench 'BenchmarkEngineExecute$|BenchmarkEndToEndSearch$|BenchmarkIndexBuild$' \
    -benchmem -benchtime=2s -count=1 . | tee "$WORK/bench.txt" >&2

# bench_field <benchmark> <unit> -> value for that unit on the bench line
bench_field() {
    awk -v name="$1" -v unit="$2" '
        $1 ~ "^"name"(-[0-9]+)?$" {
            for (i = 2; i < NF; i++) if ($(i+1) == unit) { print $i; exit }
        }' "$WORK/bench.txt"
}

ENGINE_NS=$(bench_field BenchmarkEngineExecute ns/op)
ENGINE_ALLOCS=$(bench_field BenchmarkEngineExecute allocs/op)
ENGINE_BYTES=$(bench_field BenchmarkEngineExecute B/op)
E2E_NS=$(bench_field BenchmarkEndToEndSearch ns/op)
E2E_ALLOCS=$(bench_field BenchmarkEndToEndSearch allocs/op)
E2E_BYTES=$(bench_field BenchmarkEndToEndSearch B/op)
BUILD_NS=$(bench_field BenchmarkIndexBuild ns/op)
BUILD_ALLOCS=$(bench_field BenchmarkIndexBuild allocs/op)
BUILD_BYTES=$(bench_field BenchmarkIndexBuild B/op)

if [ "${ENGINE_ALLOCS%.*}" -gt 8 ]; then
    echo "FATAL: BenchmarkEngineExecute allocs/op = $ENGINE_ALLOCS exceeds budget of 8" >&2
    exit 1
fi
echo "== engine allocs/op = $ENGINE_ALLOCS (budget 8)" >&2

echo "== codec matrix: table1 under raw and gvarint" >&2
index_bytes() { # index_bytes <outfile>
    awk '/^index bytes on device:/ { print $5; exit }' "$1"
}
CODEC_MATRIX="["
first=1
for codec in raw gvarint; do
    for mscale in small full; do
        [ "$mscale" = full ] && [ "$SCALE" != full ] && continue
        "$WORK/hybridbench" -exp table1 -scale "$mscale" -jobs "$JOBS" -codec "$codec" \
            >"$WORK/table1_${codec}_${mscale}.txt" 2>/dev/null
        bytes=$(index_bytes "$WORK/table1_${codec}_${mscale}.txt")
        echo "   $codec/$mscale: index bytes on device = $bytes" >&2
        [ $first -eq 0 ] && CODEC_MATRIX="$CODEC_MATRIX,"
        CODEC_MATRIX="$CODEC_MATRIX
    {\"codec\": \"$codec\", \"scale\": \"$mscale\", \"index_bytes\": $bytes}"
        first=0
    done
done
CODEC_MATRIX="$CODEC_MATRIX
  ]"
for mscale in small full; do
    [ "$mscale" = full ] && [ "$SCALE" != full ] && continue
    RAW_BYTES=$(index_bytes "$WORK/table1_raw_${mscale}.txt")
    GV_BYTES=$(index_bytes "$WORK/table1_gvarint_${mscale}.txt")
    if [ "$GV_BYTES" -ge "$RAW_BYTES" ]; then
        echo "FATAL: gvarint index ($GV_BYTES B) not smaller than raw ($RAW_BYTES B) at scale $mscale" >&2
        exit 1
    fi
    # The situation mix (P_i, T_i) is byte-denominated — compressed lists
    # shift cache occupancy, so those rows legitimately differ between
    # codecs. The query-count line must still agree.
    if ! diff <(grep '^queries classified:' "$WORK/table1_raw_${mscale}.txt") \
              <(grep '^queries classified:' "$WORK/table1_gvarint_${mscale}.txt") >/dev/null; then
        echo "FATAL: table1 query counts diverge between codecs at scale $mscale" >&2
        exit 1
    fi
done
# Query-result identity across codecs (docs, scores, posting counts — the
# actual contract; timing/occupancy may differ) is checked exhaustively by
# the dedicated tests, across all cache modes.
if ! go test -count=1 -run 'TestExecuteIdenticalAcrossCodecs' ./internal/engine >/dev/null 2>&1; then
    echo "FATAL: TestExecuteIdenticalAcrossCodecs failed" >&2
    exit 1
fi
if ! go test -count=1 -run 'TestResultsIdenticalAcrossCodecs' . >/dev/null 2>&1; then
    echo "FATAL: TestResultsIdenticalAcrossCodecs failed" >&2
    exit 1
fi
echo "== gvarint strictly smaller on device, results codec-invariant" >&2

# On a single CPU the serial/parallel ratio measures scheduler noise, not
# parallelism; report it only when the host can run jobs concurrently.
if [ "$(nproc)" -gt 1 ]; then
    SPEEDUP=$(awk -v s="$SERIAL_S" -v p="$PARALLEL_S" 'BEGIN{printf "%.2f", s/p}')
else
    SPEEDUP=null
fi

# Serving matrix: the suite output already contains the serving sweep's
# per-cell lines; fold them into JSON.
SERVING_MU=$(awk '/^single-shard closed-loop capacity mu=/ { sub(/^.*mu=/,""); print $1; exit }' "$WORK/out_serial.txt")
SERVING_MATRIX=$(awk '
    /^shards=[0-9]+ load=/ {
        for (i = 1; i <= NF; i++) if (split($i, a, "=") == 2) kv[a[1]] = a[2]
        sub(/x$/, "", kv["load"])
        printf "%s\n    {\"shards\": %s, \"load\": %s, \"offered_qps\": %s, \"tput_qps\": %s, \"coalesced\": %s, \"p50_us\": %s, \"p99_us\": %s, \"p999_us\": %s}", \
            (found++ ? "," : ""), kv["shards"], kv["load"], kv["offered_qps"], \
            kv["tput_qps"], kv["coalesced"], kv["p50_us"], kv["p99_us"], kv["p999_us"]
        delete kv
    }
    END { print "" }' "$WORK/out_serial.txt")
if [ -z "$SERVING_MU" ] || [ -z "$(printf %s "$SERVING_MATRIX" | tr -d "[:space:]")" ]; then
    echo "FATAL: serving matrix missing from suite output" >&2
    exit 1
fi

# Policy zoo: the suite output contains the policy x budget x workload
# table; fold its rows into JSON so the trajectory records every policy's
# hit ratio, latency and flash wear.
POLICY_MATRIX=$(awk '
    /^# Policy zoo/ { inzoo = 1; next }
    inzoo && /^\(/ { inzoo = 0 }
    inzoo && NF == 7 && $2 ~ /^[0-9.]+x$/ {
        budget = $2; sub(/x$/, "", budget)
        printf "%s\n    {\"workload\": \"%s\", \"budget\": %s, \"policy\": \"%s\", \"ric\": %s, \"resp_ms\": %s, \"ssd_pages\": %s, \"erases\": %s}", \
            (found++ ? "," : ""), $1, budget, $3, $4, $5, $6, $7
    }
    END { print "" }' "$WORK/out_serial.txt")
if [ -z "$(printf %s "$POLICY_MATRIX" | tr -d "[:space:]")" ]; then
    echo "FATAL: policy-zoo matrix missing from suite output" >&2
    exit 1
fi

baseline_json() { # baseline_json <ns_var> <allocs_var>
    local ns="${!1:-}" allocs="${!2:-}"
    if [ -n "$ns" ] && [ -n "$allocs" ]; then
        printf '{"ns_op": %s, "allocs_op": %s}' "$ns" "$allocs"
    else
        printf 'null'
    fi
}

cat >"$OUT" <<EOF
{
  "pr": $PR,
  "host": {
    "cpus": $(nproc),
    "go": "$(go env GOVERSION)"
  },
  "suite": {
    "scale": "$SCALE",
    "serial_jobs1_seconds": $SERIAL_S,
    "parallel_jobs${JOBS}_seconds": $PARALLEL_S,
    "parallel_jobs": $JOBS,
    "speedup": $SPEEDUP,
    "outputs_byte_identical": true,
    "pre_change_serial_seconds": ${BASELINE_SUITE_S:-null}
  },
  "microbench": {
    "engine_execute": {
      "ns_op": $ENGINE_NS, "bytes_op": $ENGINE_BYTES, "allocs_op": $ENGINE_ALLOCS,
      "baseline": $(baseline_json BASELINE_ENGINE_NS BASELINE_ENGINE_ALLOCS)
    },
    "end_to_end_search": {
      "ns_op": $E2E_NS, "bytes_op": $E2E_BYTES, "allocs_op": $E2E_ALLOCS,
      "baseline": $(baseline_json BASELINE_E2E_NS BASELINE_E2E_ALLOCS)
    },
    "index_build": {
      "ns_op": $BUILD_NS, "bytes_op": $BUILD_BYTES, "allocs_op": $BUILD_ALLOCS,
      "baseline": $(baseline_json BASELINE_BUILD_NS BASELINE_BUILD_ALLOCS)
    }
  },
  "codec_matrix": $CODEC_MATRIX,
  "policy_zoo": {
    "scale": "$SCALE",
    "matrix": [$POLICY_MATRIX
    ]
  },
  "serving": {
    "scale": "$SCALE",
    "single_shard_capacity_qps": $SERVING_MU,
    "matrix": [$SERVING_MATRIX
    ]
  }
}
EOF

jq -e . "$OUT" >/dev/null || { echo "FATAL: $OUT is not valid JSON" >&2; exit 1; }

echo "== wrote $OUT" >&2
cat "$OUT"
