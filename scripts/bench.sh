#!/usr/bin/env bash
# bench.sh — per-PR benchmark harness.
#
# Times the full experiment suite serially (-jobs 1) and on all CPUs
# (-jobs $(nproc)), verifies the two stdout streams are byte-identical,
# runs the tier-1 engine/index micro-benchmarks with -benchmem, and writes
# the whole record to BENCH_pr${PR}.json, extending the perf trajectory
# (BENCH_pr2.json was the first point).
#
# Environment:
#   PR       PR number stamped into the record (default: 6)
#   SCALE    suite scale to time (default: small; full takes much longer)
#   JOBS     parallel job count (default: nproc)
#   OUT      output JSON path (default: BENCH_pr${PR}.json in the repo root)
#   BASELINE_ENGINE_NS / _ALLOCS, BASELINE_E2E_NS / _ALLOCS,
#   BASELINE_BUILD_NS / _ALLOCS, BASELINE_SUITE_S
#            optional pre-change numbers to embed for before/after deltas
set -euo pipefail

cd "$(dirname "$0")/.."

PR="${PR:-6}"
SCALE="${SCALE:-small}"
JOBS="${JOBS:-$(nproc)}"
OUT="${OUT:-BENCH_pr${PR}.json}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== building hybridbench" >&2
go build -o "$WORK/hybridbench" ./cmd/hybridbench

run_suite() { # run_suite <jobs> <outfile> -> wall seconds
    local t0 t1
    t0=$(date +%s.%N)
    "$WORK/hybridbench" -exp all -scale "$SCALE" -jobs "$1" >"$2" 2>"$WORK/err_$1.txt"
    t1=$(date +%s.%N)
    awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.2f", b-a}'
}

echo "== timing suite: -scale $SCALE -jobs 1" >&2
SERIAL_S=$(run_suite 1 "$WORK/out_serial.txt")
echo "   ${SERIAL_S}s" >&2

echo "== timing suite: -scale $SCALE -jobs $JOBS" >&2
PARALLEL_S=$(run_suite "$JOBS" "$WORK/out_parallel.txt")
echo "   ${PARALLEL_S}s" >&2

if ! cmp -s "$WORK/out_serial.txt" "$WORK/out_parallel.txt"; then
    echo "FATAL: -jobs 1 and -jobs $JOBS stdout differ" >&2
    diff "$WORK/out_serial.txt" "$WORK/out_parallel.txt" | head -40 >&2
    exit 1
fi
echo "== outputs byte-identical" >&2

echo "== running tier-1 micro-benchmarks (-benchmem)" >&2
go test -run '^$' -bench 'BenchmarkEngineExecute$|BenchmarkEndToEndSearch$|BenchmarkIndexBuild$' \
    -benchmem -benchtime=2s -count=1 . | tee "$WORK/bench.txt" >&2

# bench_field <benchmark> <unit> -> value for that unit on the bench line
bench_field() {
    awk -v name="$1" -v unit="$2" '
        $1 ~ "^"name"(-[0-9]+)?$" {
            for (i = 2; i < NF; i++) if ($(i+1) == unit) { print $i; exit }
        }' "$WORK/bench.txt"
}

ENGINE_NS=$(bench_field BenchmarkEngineExecute ns/op)
ENGINE_ALLOCS=$(bench_field BenchmarkEngineExecute allocs/op)
ENGINE_BYTES=$(bench_field BenchmarkEngineExecute B/op)
E2E_NS=$(bench_field BenchmarkEndToEndSearch ns/op)
E2E_ALLOCS=$(bench_field BenchmarkEndToEndSearch allocs/op)
E2E_BYTES=$(bench_field BenchmarkEndToEndSearch B/op)
BUILD_NS=$(bench_field BenchmarkIndexBuild ns/op)
BUILD_ALLOCS=$(bench_field BenchmarkIndexBuild allocs/op)
BUILD_BYTES=$(bench_field BenchmarkIndexBuild B/op)

SPEEDUP=$(awk -v s="$SERIAL_S" -v p="$PARALLEL_S" 'BEGIN{printf "%.2f", s/p}')

baseline_json() { # baseline_json <ns_var> <allocs_var>
    local ns="${!1:-}" allocs="${!2:-}"
    if [ -n "$ns" ] && [ -n "$allocs" ]; then
        printf '{"ns_op": %s, "allocs_op": %s}' "$ns" "$allocs"
    else
        printf 'null'
    fi
}

cat >"$OUT" <<EOF
{
  "pr": $PR,
  "host": {
    "cpus": $(nproc),
    "go": "$(go env GOVERSION)"
  },
  "suite": {
    "scale": "$SCALE",
    "serial_jobs1_seconds": $SERIAL_S,
    "parallel_jobs${JOBS}_seconds": $PARALLEL_S,
    "parallel_jobs": $JOBS,
    "speedup": $SPEEDUP,
    "outputs_byte_identical": true,
    "pre_change_serial_seconds": ${BASELINE_SUITE_S:-null}
  },
  "microbench": {
    "engine_execute": {
      "ns_op": $ENGINE_NS, "bytes_op": $ENGINE_BYTES, "allocs_op": $ENGINE_ALLOCS,
      "baseline": $(baseline_json BASELINE_ENGINE_NS BASELINE_ENGINE_ALLOCS)
    },
    "end_to_end_search": {
      "ns_op": $E2E_NS, "bytes_op": $E2E_BYTES, "allocs_op": $E2E_ALLOCS,
      "baseline": $(baseline_json BASELINE_E2E_NS BASELINE_E2E_ALLOCS)
    },
    "index_build": {
      "ns_op": $BUILD_NS, "bytes_op": $BUILD_BYTES, "allocs_op": $BUILD_ALLOCS,
      "baseline": $(baseline_json BASELINE_BUILD_NS BASELINE_BUILD_ALLOCS)
    }
  }
}
EOF

echo "== wrote $OUT" >&2
cat "$OUT"
