#!/usr/bin/env bash
# lint.sh — the repository's one-shot lint gate.
#
# Runs exactly what the CI lint job runs, in the same order, so a clean
# local `./scripts/lint.sh` means a green lint job:
#
#   1. gofmt       (formatting, includes testdata fixtures)
#   2. go vet      (toolchain vet)
#   3. staticcheck (version pinned in tools/tools.go)
#   4. hybridlint  (the repo's contract analyzers: detclock, mapiter,
#                   statsevent, ioerr, attrib, bufalias, confine — see
#                   internal/analysis — plus the allocbudget gate, which
#                   replays compiler escape analysis against the budgets
#                   committed in allocbudget.txt; any over-budget hot-path
#                   function makes hybridlint, and this script, exit
#                   non-zero)
#
# Environment:
#   SKIP_STATICCHECK=1   skip step 3 (e.g. offline and not installed;
#                        hybridlint and vet still run)
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

echo "== gofmt" >&2
out="$(gofmt -l .)"
if [ -n "$out" ]; then
    echo "files need gofmt:" >&2
    echo "$out" >&2
    fail=1
fi

echo "== go vet" >&2
go vet ./... || fail=1

if [ "${SKIP_STATICCHECK:-0}" != "1" ]; then
    echo "== staticcheck" >&2
    # Single source of truth for the pinned version: tools/tools.go.
    version="$(sed -n 's|.*honnef.co/go/tools/cmd/staticcheck.*// version: \(.*\)$|\1|p' tools/tools.go)"
    if [ -z "$version" ]; then
        echo "could not read staticcheck version from tools/tools.go" >&2
        exit 2
    fi
    bin="$(go env GOPATH)/bin/staticcheck"
    if ! "$bin" -version 2>/dev/null | grep -q "$version"; then
        go install "honnef.co/go/tools/cmd/staticcheck@$version"
    fi
    "$bin" ./... || fail=1
else
    echo "== staticcheck (skipped: SKIP_STATICCHECK=1)" >&2
fi

# -timing prints a per-analyzer wall-time line to stderr so a slow
# analyzer shows up here rather than as a mystery in CI runtimes.
echo "== hybridlint" >&2
go run ./cmd/hybridlint -timing ./... || fail=1

if [ "$fail" -ne 0 ]; then
    echo "lint failed" >&2
    exit 1
fi
echo "lint OK" >&2
